// Tests for the orp_report analysis engine (src/obs/trace_analysis) on
// hand-written fixture traces: span self-time accounting, flow-event s/f
// pairing, malformed-line rejection, annealer convergence diagnostics, and
// byte-deterministic rendering. trace_analysis is a pure file reader
// compiled unconditionally, so this suite also runs under ORP_OBS_DISABLED.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace_analysis.hpp"

namespace orp::obs::report {
namespace {

std::string event(const char* ph, const char* cat, const char* name,
                  long long ts, int tid = 1, std::uint64_t id = 0) {
  std::string line = "{\"name\":\"" + std::string(name) + "\",\"cat\":\"" +
                     cat + "\",\"ph\":\"" + ph +
                     "\",\"ts\":" + std::to_string(ts) +
                     ",\"pid\":1,\"tid\":" + std::to_string(tid);
  if (id != 0) line += ",\"id\":" + std::to_string(id);
  if (ph[0] == 'f') line += ",\"bp\":\"e\"";
  line += "}";
  return line;
}

std::string counter(const char* cat, const char* name, long long ts,
                    double value, int tid = 1) {
  return "{\"name\":\"" + std::string(name) + "\",\"cat\":\"" + cat +
         "\",\"ph\":\"C\",\"ts\":" + std::to_string(ts) +
         ",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"value\":" + std::to_string(value) + "}}";
}

const SpanStat* find_span(const TraceAnalysis& a, const std::string& name) {
  for (const SpanStat& s : a.spans) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

// A root span with two enclosed children: self time is total minus the
// children, and the per-kind aggregation sums both child instances.
std::vector<std::string> nested_span_fixture() {
  return {
      event("B", "search", "root", 0),
      event("B", "search", "child", 100),
      event("E", "search", "child", 300),
      event("B", "search", "child", 400),
      event("E", "search", "child", 600),
      event("E", "search", "root", 1000),
  };
}

// Ten best-h-ASPL samples that improve for the first 400us and then go
// flat: progress dies before the midpoint, so the run counts as stalled.
std::vector<std::string> stalled_fixture() {
  std::vector<std::string> lines;
  const double best[10] = {5.0, 4.9, 4.8, 4.7, 4.6, 4.6, 4.6, 4.6, 4.6, 4.6};
  for (int i = 0; i < 10; ++i) {
    const long long ts = 100LL * i;
    lines.push_back(counter("search", "annealer.best_haspl", ts, best[i]));
    lines.push_back(counter("search", "annealer.acceptance_rate", ts, 0.3));
    lines.push_back(counter("search", "annealer.temperature", ts, 1.0 - 0.1 * i));
    lines.push_back(counter("search", "annealer.iteration", ts, 10.0 * ts));
  }
  return lines;
}

TEST(ObsReportSpans, SelfTimeSubtractsChildren) {
  const TraceAnalysis a = analyze_trace(nested_span_fixture());
  EXPECT_EQ(a.event_lines, 6u);
  EXPECT_EQ(a.malformed_lines, 0u);
  EXPECT_EQ(a.threads, 1u);
  EXPECT_DOUBLE_EQ(a.duration_us, 1000.0);

  const SpanStat* root = find_span(a, "root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, 1u);
  EXPECT_DOUBLE_EQ(root->total_us, 1000.0);
  EXPECT_DOUBLE_EQ(root->self_us, 600.0);  // 1000 - two 200us children
  EXPECT_DOUBLE_EQ(root->max_us, 1000.0);

  const SpanStat* child = find_span(a, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->count, 2u);
  EXPECT_DOUBLE_EQ(child->total_us, 400.0);
  EXPECT_DOUBLE_EQ(child->self_us, 400.0);

  // Leaves plus the root's own slice account for the whole wall clock.
  double total_self = 0.0;
  for (const SpanStat& s : a.spans) total_self += s.self_us;
  EXPECT_DOUBLE_EQ(total_self, 1000.0);
  EXPECT_LE(total_self, a.duration_us * a.threads);

  // Sorted by self time within the category: root (600) before child (400).
  ASSERT_EQ(a.spans.size(), 2u);
  EXPECT_EQ(a.spans[0].name, "root");
  EXPECT_EQ(a.spans[1].name, "child");
}

TEST(ObsReportSpans, UnclosedAndStrayEndsAreCountedNotFatal) {
  std::vector<std::string> lines = nested_span_fixture();
  lines.push_back(event("B", "search", "dangling", 500, 2));
  lines.push_back(event("E", "search", "orphan", 200, 9));
  const TraceAnalysis a = analyze_trace(lines);
  EXPECT_EQ(a.unclosed_spans, 1u);
  EXPECT_EQ(a.stray_ends, 1u);
  // The dangling span is closed at trace end (ts 1000): 500us of total.
  const SpanStat* dangling = find_span(a, "dangling");
  ASSERT_NE(dangling, nullptr);
  EXPECT_DOUBLE_EQ(dangling->total_us, 500.0);
}

TEST(ObsReportFlows, PairsStartAndFinishById) {
  std::vector<std::string> lines = nested_span_fixture();
  // Matched pair: the 's' tail under the submitter (tid 1), the 'f' head on
  // the worker (tid 2). Id 8 never finishes (task still queued at exit).
  lines.push_back(event("s", "pool", "threadpool.task", 150, 1, 7));
  lines.push_back(event("f", "pool", "threadpool.task", 200, 2, 7));
  lines.push_back(event("s", "pool", "threadpool.task", 160, 1, 8));
  const TraceAnalysis a = analyze_trace(lines);
  EXPECT_EQ(a.flow_starts, 2u);
  EXPECT_EQ(a.flow_finishes, 1u);
  EXPECT_EQ(a.flow_matched, 1u);
}

TEST(ObsReportParse, MalformedLinesAreCountedAndSkipped) {
  std::vector<std::string> lines = nested_span_fixture();
  lines.push_back("this is not json");
  lines.push_back("{\"ph\":\"B\"}");  // event without a timestamp
  lines.push_back("[1,2,3]");         // not an object
  lines.push_back("{\"kind\":\"counter\",\"name\":\"x\",\"value\":3}");
  lines.push_back("");  // blank lines are ignored entirely
  const TraceAnalysis a = analyze_trace(lines);
  EXPECT_EQ(a.total_lines, 10u);
  EXPECT_EQ(a.event_lines, 6u);
  EXPECT_EQ(a.malformed_lines, 3u);
  EXPECT_EQ(a.metric_lines, 1u);
}

TEST(ObsReportConvergence, DetectsStallAndLocatesLastImprovement) {
  ReportOptions options;
  options.windows = 2;
  const TraceAnalysis a = analyze_trace(stalled_fixture(), options);
  const Convergence& conv = a.convergence;
  ASSERT_TRUE(conv.present);
  EXPECT_EQ(conv.samples, 10u);
  EXPECT_DOUBLE_EQ(conv.initial_best, 5.0);
  EXPECT_DOUBLE_EQ(conv.final_best, 4.6);
  // 0.4 h-ASPL over 900us of annealer span.
  EXPECT_NEAR(conv.improvement_per_s, 0.4 / (900.0 / 1e6), 1e-6);
  EXPECT_DOUBLE_EQ(conv.last_improvement_us, 400.0);
  EXPECT_EQ(conv.last_improvement_iter, 4000);
  EXPECT_NEAR(conv.stall_fraction, 500.0 / 900.0, 1e-9);
  EXPECT_TRUE(conv.stalled);

  ASSERT_EQ(conv.windows.size(), 2u);
  EXPECT_EQ(conv.windows[0].samples, 5u);
  EXPECT_EQ(conv.windows[1].samples, 5u);
  EXPECT_NEAR(conv.windows[0].acceptance, 0.3, 1e-9);
  EXPECT_DOUBLE_EQ(conv.windows[1].best_haspl, 4.6);
}

TEST(ObsReportConvergence, StrictImprovementIsNotAStall) {
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) {
    lines.push_back(
        counter("search", "annealer.best_haspl", 100LL * i, 5.0 - 0.1 * i));
  }
  const TraceAnalysis a = analyze_trace(lines);
  ASSERT_TRUE(a.convergence.present);
  EXPECT_DOUBLE_EQ(a.convergence.stall_fraction, 0.0);
  EXPECT_FALSE(a.convergence.stalled);
  // No iteration series in this trace: the iter marker stays unset.
  EXPECT_EQ(a.convergence.last_improvement_iter, -1);
}

TEST(ObsReportCounters, SnapshotCategoryMeansDeltas) {
  std::vector<std::string> lines;
  lines.push_back(counter("snapshot", "annealer.moves", 100, 10.0));
  lines.push_back(counter("snapshot", "annealer.moves", 200, 30.0));
  lines.push_back(counter("search", "annealer.temperature", 100, 2.0));
  lines.push_back(counter("search", "annealer.temperature", 200, 1.0));
  const TraceAnalysis a = analyze_trace(lines);
  ASSERT_EQ(a.counters.size(), 2u);
  // Counters sort by (category, name): "search" precedes "snapshot".
  const CounterStat& deltas = a.counters[1];
  EXPECT_EQ(deltas.name, "annealer.moves");
  EXPECT_TRUE(deltas.is_delta);
  EXPECT_DOUBLE_EQ(deltas.sum, 40.0);  // deltas accumulate to a total
  const CounterStat& level = a.counters[0];
  EXPECT_FALSE(level.is_delta);
  EXPECT_DOUBLE_EQ(level.first, 2.0);
  EXPECT_DOUBLE_EQ(level.last, 1.0);
}

TEST(ObsReportRender, MarkdownIsByteDeterministic) {
  std::vector<std::string> lines = nested_span_fixture();
  for (const std::string& extra : stalled_fixture()) lines.push_back(extra);
  const TraceAnalysis a1 = analyze_trace(lines);
  const TraceAnalysis a2 = analyze_trace(lines);
  const std::string md1 = render_markdown(a1);
  const std::string md2 = render_markdown(a2);
  EXPECT_EQ(md1, md2);
  EXPECT_EQ(render_csv(a1), render_csv(a2));
  // The sections a reader greps for are present.
  EXPECT_NE(md1.find("## Span profile"), std::string::npos);
  EXPECT_NE(md1.find("## Annealer convergence"), std::string::npos);
  EXPECT_NE(md1.find("STALLED"), std::string::npos);
}

TEST(ObsReportRender, CsvHasHeaderAndSections) {
  std::vector<std::string> lines = nested_span_fixture();
  for (const std::string& extra : stalled_fixture()) lines.push_back(extra);
  const std::string csv = render_csv(analyze_trace(lines));
  EXPECT_EQ(csv.rfind("section,category,name,count,x1,x2,x3,x4\n", 0), 0u);
  EXPECT_NE(csv.find("span,search,root,1"), std::string::npos);
  EXPECT_NE(csv.find("convergence,search,best_haspl"), std::string::npos);
  EXPECT_NE(csv.find("convergence_window,search,window1"), std::string::npos);
}

TEST(ObsReportFiles, TraceAndLedgerRoundTripThroughDisk) {
  const std::string trace_path = testing::TempDir() + "report_fixture.jsonl";
  {
    std::ofstream out(trace_path);
    for (const std::string& line : nested_span_fixture()) out << line << "\n";
  }
  const TraceAnalysis a = analyze_trace_file(trace_path);
  EXPECT_EQ(a.event_lines, 6u);

  const std::string ledger_path = testing::TempDir() + "report_ledger.jsonl";
  {
    std::ofstream out(ledger_path);
    out << "{\"schema\":\"orp-run/1\",\"ts\":\"2026-08-08T00:00:00Z\","
           "\"tool\":\"microbench\",\"git_sha\":\"abc1234\","
           "\"compiler\":\"gcc 12\",\"wall_s\":1.5,\"peak_rss_kb\":2048,"
           "\"notes\":{\"n\":\"256\",\"best\":4.5}}\n";
    out << "{\"schema\":\"other/1\",\"tool\":\"ignored\"}\n";
    out << "torn half-written tail line\n";
  }
  const std::vector<LedgerEntry> ledger = read_ledger_file(ledger_path);
  ASSERT_EQ(ledger.size(), 1u);
  EXPECT_EQ(ledger[0].tool, "microbench");
  EXPECT_EQ(ledger[0].git_sha, "abc1234");
  EXPECT_DOUBLE_EQ(ledger[0].wall_s, 1.5);
  EXPECT_EQ(ledger[0].peak_rss_kb, 2048);
  EXPECT_EQ(ledger[0].notes.size(), 2u);

  const std::string md = render_markdown(a, ledger);
  EXPECT_NE(md.find("## Run ledger"), std::string::npos);
  EXPECT_NE(md.find("microbench"), std::string::npos);

  std::remove(trace_path.c_str());
  std::remove(ledger_path.c_str());
  EXPECT_THROW(analyze_trace_file(trace_path), std::runtime_error);
  EXPECT_THROW(read_ledger_file(ledger_path), std::runtime_error);
}

}  // namespace
}  // namespace orp::obs::report

// Tests for swap / swing operations and random initialization: validity,
// exact invertibility, degree preservation.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "search/operations.hpp"
#include "search/random_init.hpp"

namespace orp {
namespace {

using EdgeList = std::vector<std::pair<SwitchId, SwitchId>>;

EdgeList edges_of(const HostSwitchGraph& g) {
  EdgeList edges;
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    for (SwitchId t : g.neighbors(s)) {
      if (s < t) edges.emplace_back(s, t);
    }
  }
  return edges;
}

TEST(RandomInit, FeasibilityPredicate) {
  EXPECT_TRUE(random_init_feasible(8, 1, 8));
  EXPECT_FALSE(random_init_feasible(9, 1, 8));
  EXPECT_TRUE(random_init_feasible(1024, 194, 15));
  EXPECT_FALSE(random_init_feasible(1024, 10, 15));   // hosts don't fit
  EXPECT_FALSE(random_init_feasible(100, 50, 3));     // 150 ports < 100+98
  EXPECT_TRUE(random_init_feasible(100, 50, 4));      // 200 >= 198
}

TEST(RandomInit, ProducesValidConnectedGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256 rng(seed);
    const auto g = random_host_switch_graph(200, 40, 12, rng);
    g.check_invariants();
    EXPECT_TRUE(g.fully_attached());
    EXPECT_TRUE(g.switches_connected());
  }
}

TEST(RandomInit, SaturatesMostPorts) {
  Xoshiro256 rng(5);
  const auto g = random_host_switch_graph(256, 60, 12, rng);
  std::uint32_t free_ports = 0;
  for (SwitchId s = 0; s < g.num_switches(); ++s) free_ports += g.free_ports(s);
  EXPECT_LE(free_ports, 2u);  // at most parity leftovers
}

TEST(RandomInit, TightPortBudgetStillConnects) {
  // m*r = 96 vs n + 2(m-1) = 30 + 62 = 92: only four spare port-endpoints.
  Xoshiro256 rng(3);
  const auto g = random_host_switch_graph(30, 32, 3, rng);
  g.check_invariants();
  EXPECT_TRUE(g.switches_connected());
}

TEST(RandomInit, RegularVariantBalancesHosts) {
  Xoshiro256 rng(7);
  const auto g = random_regular_host_switch_graph(120, 30, 10, rng);
  for (SwitchId s = 0; s < g.num_switches(); ++s) EXPECT_EQ(g.hosts_on(s), 4u);
}

TEST(RandomInit, RegularVariantRejectsIndivisible) {
  Xoshiro256 rng(7);
  EXPECT_THROW(random_regular_host_switch_graph(121, 30, 10, rng),
               std::invalid_argument);
}

TEST(RandomInit, ThrowsOnInfeasible) {
  Xoshiro256 rng(1);
  EXPECT_THROW(random_host_switch_graph(1024, 10, 15, rng), std::invalid_argument);
}

TEST(SwapOperation, ApplyThenInverseRestores) {
  Xoshiro256 rng(11);
  auto g = random_host_switch_graph(100, 25, 10, rng);
  const auto before = g;
  const auto move = propose_swap(g, edges_of(g), rng);
  ASSERT_TRUE(move.has_value());
  apply_swap(g, *move);
  EXPECT_FALSE(g == before);
  apply_swap(g, move->inverse());
  EXPECT_TRUE(g == before);
}

TEST(SwapOperation, PreservesDegreesAndHosts) {
  Xoshiro256 rng(13);
  auto g = random_host_switch_graph(100, 25, 10, rng);
  std::vector<std::uint32_t> degrees(g.num_switches()), hosts(g.num_switches());
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    degrees[s] = g.switch_degree(s);
    hosts[s] = g.hosts_on(s);
  }
  for (int i = 0; i < 50; ++i) {
    const auto move = propose_swap(g, edges_of(g), rng);
    ASSERT_TRUE(move.has_value());
    apply_swap(g, *move);
    g.check_invariants();
  }
  for (SwitchId s = 0; s < g.num_switches(); ++s) {
    EXPECT_EQ(g.switch_degree(s), degrees[s]);
    EXPECT_EQ(g.hosts_on(s), hosts[s]);
  }
}

TEST(SwingOperation, ApplyThenInverseRestores) {
  Xoshiro256 rng(17);
  auto g = random_host_switch_graph(100, 25, 10, rng);
  const auto before = g;
  const auto move = propose_swing(g, edges_of(g), rng);
  ASSERT_TRUE(move.has_value());
  apply_swing(g, *move);
  EXPECT_FALSE(g == before);
  apply_swing(g, move->inverse());
  EXPECT_TRUE(g == before);
}

TEST(SwingOperation, MovesExactlyOneHost) {
  Xoshiro256 rng(19);
  auto g = random_host_switch_graph(100, 25, 10, rng);
  const auto move = propose_swing(g, edges_of(g), rng);
  ASSERT_TRUE(move.has_value());
  const SwitchId from = g.host_switch(move->h);
  EXPECT_EQ(from, move->c);
  apply_swing(g, *move);
  g.check_invariants();
  EXPECT_EQ(g.host_switch(move->h), move->b);
  // Total ports used is conserved.
  EXPECT_TRUE(g.fully_attached());
}

TEST(SwingOperation, ValidityRejectsBadMoves) {
  // Triangle of switches, host on each.
  HostSwitchGraph g(3, 3, 5);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  // swing(a=0, b=1, c=2): needs edge {0,1} ok, host on 2 ok, but {0,2}
  // absent — valid.
  EXPECT_TRUE(swing_valid(g, SwingMove{0, 1, 2, 2}));
  // c == a invalid.
  EXPECT_FALSE(swing_valid(g, SwingMove{0, 1, 0, 0}));
  // host not on c.
  EXPECT_FALSE(swing_valid(g, SwingMove{0, 1, 2, 1}));
  // missing edge {a,b}.
  EXPECT_FALSE(swing_valid(g, SwingMove{0, 2, 1, 1}));
  g.add_switch_edge(0, 2);
  // now {a,c} exists -> invalid.
  EXPECT_FALSE(swing_valid(g, SwingMove{0, 1, 2, 2}));
}

TEST(TwoNeighborSwing, CompletionNetEffectIsASwap) {
  Xoshiro256 rng(23);
  auto g = random_host_switch_graph(100, 25, 10, rng);
  const auto before = g;
  std::vector<std::uint32_t> hosts_before(g.num_switches());
  for (SwitchId s = 0; s < g.num_switches(); ++s) hosts_before[s] = g.hosts_on(s);

  // Find a first swing with a valid completion.
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto work = before;
    const auto first = propose_swing(work, edges_of(work), rng);
    if (!first) continue;
    apply_swing(work, *first);
    const auto completion = propose_completion_swing(work, *first, rng);
    if (!completion) continue;
    apply_swing(work, *completion);
    work.check_invariants();
    // Net effect is a swap: host distribution unchanged.
    for (SwitchId s = 0; s < work.num_switches(); ++s) {
      EXPECT_EQ(work.hosts_on(s), hosts_before[s]);
    }
    EXPECT_EQ(work.host_switch(first->h), before.host_switch(first->h));
    EXPECT_EQ(work.num_switch_edges(), before.num_switch_edges());
    return;
  }
  FAIL() << "no completable 2-neighbor swing found in 200 attempts";
}

}  // namespace
}  // namespace orp

// Tests for h-ASPL / diameter computation, including agreement between the
// scalar reference kernel and the bit-parallel kernel on randomized graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.hpp"
#include "common/thread_pool.hpp"
#include "hsg/metrics.hpp"
#include "obs/metrics.hpp"
#include "search/clique.hpp"
#include "search/random_init.hpp"

namespace orp {
namespace {

HostSwitchGraph single_switch(std::uint32_t n, std::uint32_t r) {
  HostSwitchGraph g(n, 1, r);
  for (HostId h = 0; h < n; ++h) g.attach_host(h, 0);
  return g;
}

// The Fig. 1 example: n=16, m=4, r=6, switches in a cycle with one chord.
HostSwitchGraph path_of_switches(std::uint32_t hosts_per_switch, std::uint32_t m,
                                 std::uint32_t r) {
  HostSwitchGraph g(hosts_per_switch * m, m, r);
  HostId h = 0;
  for (SwitchId s = 0; s < m; ++s) {
    for (std::uint32_t i = 0; i < hosts_per_switch; ++i) g.attach_host(h++, s);
  }
  for (SwitchId s = 0; s + 1 < m; ++s) g.add_switch_edge(s, s + 1);
  return g;
}

TEST(HostMetrics, SingleSwitchIsAllPairsTwo) {
  const auto g = single_switch(8, 10);
  const auto metrics = compute_host_metrics(g);
  EXPECT_DOUBLE_EQ(metrics.h_aspl, 2.0);
  EXPECT_EQ(metrics.diameter, 2u);
  EXPECT_TRUE(metrics.connected);
  EXPECT_EQ(metrics.total_length, 2u * (8 * 7 / 2));
}

TEST(HostMetrics, SingleHostPairOnOneSwitch) {
  const auto g = single_switch(2, 4);
  const auto metrics = compute_host_metrics(g);
  EXPECT_DOUBLE_EQ(metrics.h_aspl, 2.0);
  EXPECT_EQ(metrics.diameter, 2u);
}

TEST(HostMetrics, OneHostHasZeroMetrics) {
  const auto g = single_switch(1, 4);
  const auto metrics = compute_host_metrics(g);
  EXPECT_DOUBLE_EQ(metrics.h_aspl, 0.0);
  EXPECT_EQ(metrics.diameter, 0u);
}

TEST(HostMetrics, PathOfSwitchesHandComputed) {
  // 2 hosts on each of 3 switches in a path: distances are 2 (same switch),
  // 3 (adjacent switches), 4 (ends). Pairs: same-switch 3*1, adjacent
  // 2*(2*2)=8 at 3, ends 2*2=4 at 4.
  const auto g = path_of_switches(2, 3, 6);
  const auto metrics = compute_host_metrics(g);
  const double expected = (3 * 2.0 + 8 * 3.0 + 4 * 4.0) / 15.0;
  EXPECT_DOUBLE_EQ(metrics.h_aspl, expected);
  EXPECT_EQ(metrics.diameter, 4u);
}

TEST(HostMetrics, DetectsDisconnectedHosts) {
  HostSwitchGraph g(2, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  const auto metrics = compute_host_metrics(g);
  EXPECT_FALSE(metrics.connected);
  // The only pair is split, so there is no connected pair to average over.
  EXPECT_EQ(metrics.connected_pairs, 0u);
  EXPECT_EQ(metrics.unreachable_pairs, 1u);
  EXPECT_TRUE(std::isinf(metrics.h_aspl));
  EXPECT_EQ(metrics.diameter, HostMetrics::kUnreachable);
}

TEST(HostMetrics, SplitGraphAveragesOverConnectedPairs) {
  // Two components: {s0-s1} carrying hosts 0,1,2 and {s2} carrying host 3.
  // Connected pairs: (0,1) same switch at 2, (0,2)/(1,2) across the edge at
  // 3. The three pairs touching host 3 are unreachable.
  HostSwitchGraph g(4, 3, 6);
  g.attach_host(0, 0);
  g.attach_host(1, 0);
  g.attach_host(2, 1);
  g.attach_host(3, 2);
  g.add_switch_edge(0, 1);
  const auto metrics = compute_host_metrics(g);
  EXPECT_FALSE(metrics.connected);
  EXPECT_EQ(metrics.connected_pairs, 3u);
  EXPECT_EQ(metrics.unreachable_pairs, 3u);
  EXPECT_EQ(metrics.total_length, 2u + 3u + 3u);
  EXPECT_DOUBLE_EQ(metrics.h_aspl, 8.0 / 3.0);
  EXPECT_EQ(metrics.diameter, 3u);
}

TEST(HostMetrics, IsolatedSwitchPairStaysConnectedAtDistanceTwo) {
  // Both hosts share the isolated switch: the pair is connected (distance
  // 2) even though the switch graph is split.
  HostSwitchGraph g(4, 3, 6);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.attach_host(2, 2);
  g.attach_host(3, 2);
  g.add_switch_edge(0, 1);
  const auto metrics = compute_host_metrics(g);
  EXPECT_FALSE(metrics.connected);
  EXPECT_EQ(metrics.connected_pairs, 2u);   // (0,1) and (2,3)
  EXPECT_EQ(metrics.unreachable_pairs, 4u);
  EXPECT_EQ(metrics.total_length, 3u + 2u);
  EXPECT_DOUBLE_EQ(metrics.h_aspl, 2.5);
  EXPECT_EQ(metrics.diameter, 3u);
}

TEST(HostMetrics, LiveMetricsToleratesDetachedHosts) {
  // Host 2 is detached (its switch died): live metrics run over the two
  // attached hosts only, while the strict entry point still throws.
  HostSwitchGraph g(3, 2, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.add_switch_edge(0, 1);
  EXPECT_THROW(compute_host_metrics(g), std::invalid_argument);
  const auto live = compute_live_host_metrics(g);
  EXPECT_TRUE(live.connected);
  EXPECT_EQ(live.connected_pairs, 1u);
  EXPECT_EQ(live.unreachable_pairs, 0u);
  EXPECT_DOUBLE_EQ(live.h_aspl, 3.0);
  EXPECT_EQ(live.diameter, 3u);
}

TEST(HostMetrics, LiveMetricsWithUnderTwoAttachedHostsIsZero) {
  HostSwitchGraph g(3, 2, 4);
  g.attach_host(0, 0);
  const auto live = compute_live_host_metrics(g);
  EXPECT_DOUBLE_EQ(live.h_aspl, 0.0);
  EXPECT_EQ(live.diameter, 0u);
  EXPECT_EQ(live.connected_pairs, 0u);
  EXPECT_EQ(live.unreachable_pairs, 0u);
}

TEST(HostMetrics, UnusedSwitchOffPathDoesNotAffectHaspl) {
  // Hosts on switches 0 and 1 (adjacent); switch 2 dangles off switch 1.
  HostSwitchGraph g(2, 3, 4);
  g.attach_host(0, 0);
  g.attach_host(1, 1);
  g.add_switch_edge(0, 1);
  g.add_switch_edge(1, 2);
  const auto metrics = compute_host_metrics(g);
  EXPECT_TRUE(metrics.connected);
  EXPECT_DOUBLE_EQ(metrics.h_aspl, 3.0);
  EXPECT_EQ(metrics.diameter, 3u);
}

TEST(HostMetrics, RequiresFullAttachment) {
  HostSwitchGraph g(2, 1, 4);
  g.attach_host(0, 0);
  EXPECT_THROW(compute_host_metrics(g), std::invalid_argument);
}

TEST(HostMetrics, MatchesCliqueClosedForm) {
  for (std::uint32_t n : {20u, 64u, 128u}) {
    const std::uint32_t r = 24;
    const auto g = build_clique_graph(n, r);
    const auto metrics = compute_host_metrics(g);
    EXPECT_NEAR(metrics.h_aspl, clique_haspl(n, r), 1e-12) << "n=" << n;
  }
}

TEST(SwitchMetrics, RingOfFive) {
  HostSwitchGraph g(1, 5, 4);
  g.attach_host(0, 0);
  for (SwitchId s = 0; s < 5; ++s) g.add_switch_edge(s, (s + 1) % 5);
  const auto metrics = compute_switch_metrics(g);
  EXPECT_DOUBLE_EQ(metrics.aspl, 1.5);  // per vertex: 1,1,2,2
  EXPECT_EQ(metrics.diameter, 2u);
}

TEST(SwitchMetrics, DisconnectedSwitchGraph) {
  // Switches 2 and 3 are isolated: the only reachable pair is (0,1).
  HostSwitchGraph g(1, 4, 4);
  g.attach_host(0, 0);
  g.add_switch_edge(0, 1);
  const auto metrics = compute_switch_metrics(g);
  EXPECT_FALSE(metrics.connected);
  EXPECT_EQ(metrics.connected_pairs, 1u);
  EXPECT_EQ(metrics.unreachable_pairs, 5u);
  EXPECT_DOUBLE_EQ(metrics.aspl, 1.0);
  EXPECT_EQ(metrics.diameter, 1u);
  EXPECT_EQ(metrics.total_length, 1u);
}

// Property sweep: the production bit-parallel kernel agrees exactly with
// the detail:: scalar reference on randomized graphs of many shapes (small
// m included, since kAuto now always resolves to bit-parallel), serial and
// pooled.
struct KernelCase {
  std::uint32_t n, m, r;
  std::uint64_t seed;
};

class KernelAgreement : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelAgreement, ScalarReferenceAndBitParallelMatch) {
  const auto param = GetParam();
  Xoshiro256 rng(param.seed);
  const auto g = random_host_switch_graph(param.n, param.m, param.r, rng);
  const auto scalar = detail::compute_host_metrics_scalar(g);
  const auto bits = compute_host_metrics(g, AsplKernel::kBitParallel);
  EXPECT_EQ(scalar.total_length, bits.total_length);
  EXPECT_EQ(scalar.diameter, bits.diameter);
  EXPECT_EQ(scalar.connected, bits.connected);
  EXPECT_EQ(scalar.connected_pairs, bits.connected_pairs);
  EXPECT_EQ(scalar.unreachable_pairs, bits.unreachable_pairs);

  // kAuto must be bit-identical too (it is the same kernel by contract).
  const auto autod = compute_host_metrics(g);
  EXPECT_EQ(scalar.total_length, autod.total_length);
  EXPECT_EQ(scalar.diameter, autod.diameter);

  ThreadPool pool(3);
  const auto pooled = compute_host_metrics(g, AsplKernel::kBitParallel, &pool);
  EXPECT_EQ(scalar.total_length, pooled.total_length);
  EXPECT_EQ(scalar.diameter, pooled.diameter);

  const auto sw_scalar = detail::compute_switch_metrics_scalar(g);
  const auto sw_bits = compute_switch_metrics(g, AsplKernel::kBitParallel);
  EXPECT_EQ(sw_scalar.total_length, sw_bits.total_length);
  EXPECT_EQ(sw_scalar.diameter, sw_bits.diameter);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, KernelAgreement,
    ::testing::Values(KernelCase{16, 4, 6, 1}, KernelCase{60, 10, 8, 2},
                      KernelCase{100, 30, 10, 3}, KernelCase{128, 70, 6, 4},
                      KernelCase{256, 80, 12, 5}, KernelCase{200, 130, 5, 6},
                      KernelCase{512, 100, 16, 7}, KernelCase{64, 64, 4, 8},
                      KernelCase{300, 65, 13, 9}, KernelCase{96, 12, 24, 10},
                      // Shapes the old kAuto routed to scalar (m < 64):
                      KernelCase{24, 6, 8, 11}, KernelCase{256, 55, 12, 12},
                      KernelCase{10, 3, 6, 13}, KernelCase{128, 18, 12, 14}));

// The unreached-pair accounting must agree between kernels too: isolate a
// few switches of a random graph and cross-check every field.
TEST(HostMetrics, KernelsAgreeOnSplitGraphs) {
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    Xoshiro256 rng(seed);
    auto g = random_host_switch_graph(96, 24, 8, rng);
    for (SwitchId s : {SwitchId{0}, SwitchId{7}, SwitchId{13}}) {
      const auto nbrs = g.neighbors(s);
      const std::vector<SwitchId> frozen(nbrs.begin(), nbrs.end());
      for (SwitchId t : frozen) g.remove_switch_edge(s, t);
    }
    const auto scalar = detail::compute_host_metrics_scalar(g);
    const auto bits = compute_host_metrics(g);
    EXPECT_EQ(scalar.total_length, bits.total_length) << "seed=" << seed;
    EXPECT_EQ(scalar.diameter, bits.diameter) << "seed=" << seed;
    EXPECT_EQ(scalar.connected, bits.connected) << "seed=" << seed;
    EXPECT_EQ(scalar.connected_pairs, bits.connected_pairs) << "seed=" << seed;
    EXPECT_EQ(scalar.unreachable_pairs, bits.unreachable_pairs)
        << "seed=" << seed;
    EXPECT_GT(bits.unreachable_pairs, 0u) << "seed=" << seed;

    ThreadPool pool(3);
    const auto pooled = compute_host_metrics(g, AsplKernel::kBitParallel, &pool);
    EXPECT_EQ(scalar.total_length, pooled.total_length) << "seed=" << seed;
    EXPECT_EQ(scalar.unreachable_pairs, pooled.unreachable_pairs)
        << "seed=" << seed;

    const auto sw_scalar = detail::compute_switch_metrics_scalar(g);
    const auto sw_bits = compute_switch_metrics(g);
    EXPECT_EQ(sw_scalar.total_length, sw_bits.total_length) << "seed=" << seed;
    EXPECT_EQ(sw_scalar.diameter, sw_bits.diameter) << "seed=" << seed;
    EXPECT_EQ(sw_scalar.connected_pairs, sw_bits.connected_pairs)
        << "seed=" << seed;
    EXPECT_EQ(sw_scalar.unreachable_pairs, sw_bits.unreachable_pairs)
        << "seed=" << seed;
  }
}

#ifndef ORP_OBS_DISABLED
// Non-test consumers must never hit the scalar path: kAuto routes to the
// bit-parallel kernel even far below 64 switches (asserted via the
// per-kernel obs call counters).
TEST(HostMetrics, AutoAlwaysResolvesToBitParallel) {
  auto& bits = obs::Registry::global().counter("aspl.kernel.bitparallel.calls");
  auto& scalar = obs::Registry::global().counter("aspl.kernel.scalar.calls");
  const auto bits_before = bits.value();
  const auto scalar_before = scalar.value();
  Xoshiro256 rng(42);
  const auto g = random_host_switch_graph(24, 6, 8, rng);
  compute_host_metrics(g);
  compute_switch_metrics(g);
  EXPECT_EQ(bits.value(), bits_before + 2);
  EXPECT_EQ(scalar.value(), scalar_before);
  detail::compute_host_metrics_scalar(g);
  EXPECT_EQ(scalar.value(), scalar_before + 1);
}
#endif

// Eq. (1) consistency: for a regular host-switch graph, the h-ASPL derived
// from the switch ASPL matches the directly computed h-ASPL.
TEST(HostMetrics, EquationOneHoldsOnRegularGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Xoshiro256 rng(seed);
    const std::uint32_t n = 120, m = 30, r = 10;
    const auto g = random_regular_host_switch_graph(n, m, r, rng);
    // Regular: every switch carries n/m hosts.
    for (SwitchId s = 0; s < m; ++s) ASSERT_EQ(g.hosts_on(s), n / m);
    const auto host = compute_host_metrics(g);
    const auto sw = compute_switch_metrics(g);
    ASSERT_TRUE(host.connected);
    const double mn = static_cast<double>(m) * n;
    const double derived = sw.aspl * (mn - n) / (mn - m) + 2.0;
    EXPECT_NEAR(host.h_aspl, derived, 1e-9) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace orp

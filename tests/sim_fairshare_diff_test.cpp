// Differential battery pinning FastFairShareSolver to the reference
// FairShareSolver (the golden oracle), plus max-min (KKT) certificate
// property tests. The contract under test (docs/sim.md): both solvers
// agree flow-by-flow within 1e-9 * capacity on any instance — including
// duplicate routes (aggregation), mid-phase deactivations (warm start),
// zero-link flows, and capacity-epsilon freeze ties — and the Machine
// produces identical phase timings whichever solver drives it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "search/random_init.hpp"
#include "sim/fairshare.hpp"
#include "sim/fairshare_fast.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace orp {
namespace {

constexpr std::uint32_t kLinks = 64;
constexpr double kCap = 5.0e9;
constexpr double kTol = 1e-9 * kCap;

struct Instance {
  std::vector<std::vector<LinkId>> paths;
  std::vector<std::uint8_t> active;
};

// Random instance with deliberate route duplication (flows draw their
// paths from a small pool, so aggregation always has work to do) and a
// sprinkle of zero-link flows. Pool paths may repeat a link — both
// solvers double-count those crossings, and the battery pins that too.
Instance random_instance(Xoshiro256& rng, std::size_t pool_size,
                         std::size_t num_flows) {
  std::vector<std::vector<LinkId>> pool(pool_size);
  for (auto& route : pool) {
    const std::size_t len = 1 + rng() % 6;
    for (std::size_t i = 0; i < len; ++i) {
      route.push_back(static_cast<LinkId>(rng() % kLinks));
    }
  }
  Instance inst;
  inst.paths.resize(num_flows);
  inst.active.assign(num_flows, 1);
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (rng() % 20 == 0) continue;  // zero-link flow
    inst.paths[f] = pool[rng() % pool_size];
  }
  return inst;
}

void expect_rates_match(const std::vector<double>& ref,
                        const std::vector<double>& fast,
                        const std::string& context) {
  ASSERT_EQ(ref.size(), fast.size()) << context;
  for (std::size_t f = 0; f < ref.size(); ++f) {
    ASSERT_NEAR(ref[f], fast[f], kTol) << context << ", flow " << f;
  }
}

void expect_certified(const Instance& inst, const std::vector<double>& rates,
                      const std::string& context) {
  std::string why;
  ASSERT_TRUE(
      max_min_certificate_ok(inst.paths, inst.active, rates, kCap, kTol, &why))
      << context << ": " << why;
}

// The core battery: randomized instances, solved cold by both solvers,
// then driven through a randomized deactivation schedule (small batches,
// re-solving after each) that exercises the fast solver's freeze-log
// warm start. One fast solver instance is reused across seeds, so
// set_paths() must fully reset phase state.
TEST(FairShareDiff, RandomizedBatteryWithDeactivationSchedules) {
  FairShareSolver ref(kLinks, kCap);
  FastFairShareSolver fast(kLinks, kCap);
  std::vector<double> r_ref, r_fast;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Xoshiro256 rng(seed);
    const std::size_t pool_size = 4 + rng() % 24;
    const std::size_t num_flows = 16 + rng() % 240;
    Instance inst = random_instance(rng, pool_size, num_flows);
    const std::string tag = "seed " + std::to_string(seed);

    fast.set_paths(inst.paths, inst.active);
    ref.solve(inst.paths, inst.active, r_ref);
    fast.solve(r_fast);
    expect_rates_match(r_ref, r_fast, tag + " cold");
    expect_certified(inst, r_ref, tag + " cold reference");
    expect_certified(inst, r_fast, tag + " cold fast");
    EXPECT_TRUE(fast.self_check());

    std::vector<std::size_t> order(num_flows);
    std::iota(order.begin(), order.end(), 0);
    std::shuffle(order.begin(), order.end(), rng);
    std::size_t pos = 0;
    int step = 0;
    while (pos < order.size()) {
      for (std::size_t batch = 1 + rng() % 7; batch > 0 && pos < order.size();
           --batch, ++pos) {
        inst.active[order[pos]] = 0;
        fast.deactivate(order[pos]);
      }
      const std::string warm_tag =
          tag + " warm step " + std::to_string(step++);
      ref.solve(inst.paths, inst.active, r_ref);
      fast.solve(r_fast);
      expect_rates_match(r_ref, r_fast, warm_tag);
      expect_certified(inst, r_fast, warm_tag + " fast");
      EXPECT_TRUE(fast.self_check());
    }
  }
}

TEST(FairShareDiff, DuplicateRoutesAggregateExactly) {
  // 96 flows over 3 distinct routes sharing a common link: aggregation
  // collapses them to 3 weighted flows; the fan-out must reproduce the
  // reference per-flow rates exactly (equal paths get equal rates).
  Instance inst;
  for (int copy = 0; copy < 32; ++copy) {
    inst.paths.push_back({0, 1});
    inst.paths.push_back({0, 2});
    inst.paths.push_back({0, 3});
  }
  inst.active.assign(inst.paths.size(), 1);

  FairShareSolver ref(kLinks, kCap);
  FastFairShareSolver fast(kLinks, kCap);
  std::vector<double> r_ref, r_fast;
  fast.set_paths(inst.paths, inst.active);
  ref.solve(inst.paths, inst.active, r_ref);
  fast.solve(r_fast);
  expect_rates_match(r_ref, r_fast, "duplicate routes");
  for (const double r : r_fast) EXPECT_NEAR(r, kCap / 96.0, kTol);
}

TEST(FairShareDiff, EmptyFlowSet) {
  FairShareSolver ref(kLinks, kCap);
  FastFairShareSolver fast(kLinks, kCap);
  const Instance inst;  // no flows at all
  std::vector<double> r_ref, r_fast;
  ref.solve(inst.paths, inst.active, r_ref);
  fast.set_paths(inst.paths, inst.active);
  fast.solve(r_fast);
  EXPECT_TRUE(r_ref.empty());
  EXPECT_TRUE(r_fast.empty());
}

TEST(FairShareDiff, SingleFlowGetsLineRate) {
  Instance inst{{{0, 1, 2}}, {1}};
  FairShareSolver ref(kLinks, kCap);
  FastFairShareSolver fast(kLinks, kCap);
  std::vector<double> r_ref, r_fast;
  ref.solve(inst.paths, inst.active, r_ref);
  fast.set_paths(inst.paths, inst.active);
  fast.solve(r_fast);
  EXPECT_DOUBLE_EQ(r_ref[0], kCap);
  EXPECT_DOUBLE_EQ(r_fast[0], kCap);
}

TEST(FairShareDiff, AllFlowsOnOneLink) {
  Instance inst;
  inst.paths.assign(37, {5});
  inst.active.assign(37, 1);
  FairShareSolver ref(kLinks, kCap);
  FastFairShareSolver fast(kLinks, kCap);
  std::vector<double> r_ref, r_fast;
  ref.solve(inst.paths, inst.active, r_ref);
  fast.set_paths(inst.paths, inst.active);
  fast.solve(r_fast);
  expect_rates_match(r_ref, r_fast, "one link");
  for (const double r : r_fast) EXPECT_NEAR(r, kCap / 37.0, kTol);
  // Drain them one at a time: the survivors' share grows every step.
  for (std::size_t f = 0; f + 1 < inst.paths.size(); ++f) {
    inst.active[f] = 0;
    fast.deactivate(f);
    ref.solve(inst.paths, inst.active, r_ref);
    fast.solve(r_fast);
    expect_rates_match(r_ref, r_fast, "drain " + std::to_string(f));
    EXPECT_NEAR(r_fast.back(), kCap / static_cast<double>(36 - f), kTol);
  }
}

TEST(FairShareDiff, ZeroLinkFlowsGetLineRateInBothSolvers) {
  // Mix of empty-path flows and a contended link; zero-link flows must
  // ride at line rate in both solvers and not perturb the contended ones.
  Instance inst{{{}, {7}, {}, {7}, {}}, {1, 1, 1, 1, 1}};
  FairShareSolver ref(kLinks, kCap);
  FastFairShareSolver fast(kLinks, kCap);
  std::vector<double> r_ref, r_fast;
  ref.solve(inst.paths, inst.active, r_ref);
  fast.set_paths(inst.paths, inst.active);
  fast.solve(r_fast);
  expect_rates_match(r_ref, r_fast, "zero-link mix");
  EXPECT_DOUBLE_EQ(r_fast[0], kCap);
  EXPECT_DOUBLE_EQ(r_fast[2], kCap);
  EXPECT_DOUBLE_EQ(r_fast[4], kCap);
  EXPECT_NEAR(r_fast[1], kCap / 2.0, kTol);
  // Deactivating a zero-link flow is a no-op for everyone else.
  inst.active[2] = 0;
  fast.deactivate(2);
  ref.solve(inst.paths, inst.active, r_ref);
  fast.solve(r_fast);
  expect_rates_match(r_ref, r_fast, "zero-link deactivated");
  EXPECT_DOUBLE_EQ(r_fast[2], 0.0);
}

TEST(FairShareDiff, EpsilonFreezeTieBreaksIdentically) {
  // Exact tie: links 0 and 1 saturate at the same level, so the shared
  // flow and both exclusive flows freeze in one round in both solvers.
  Instance tie{{{0}, {0, 1}, {1}}, {1, 1, 1}};
  FairShareSolver ref(kLinks, kCap);
  FastFairShareSolver fast(kLinks, kCap);
  std::vector<double> r_ref, r_fast;
  ref.solve(tie.paths, tie.active, r_ref);
  fast.set_paths(tie.paths, tie.active);
  fast.solve(r_fast);
  expect_rates_match(r_ref, r_fast, "tie");
  for (const double r : r_fast) EXPECT_NEAR(r, kCap / 2.0, kTol);

  // Asymmetric counts: link 0 (4 crossers) saturates first at cap/4;
  // link 1 then has one unfrozen crosser left, which rides to 3cap/4.
  Instance skew{{{0}, {0}, {0}, {0, 1}, {1}}, {1, 1, 1, 1, 1}};
  ref.solve(skew.paths, skew.active, r_ref);
  fast.set_paths(skew.paths, skew.active);
  fast.solve(r_fast);
  expect_rates_match(r_ref, r_fast, "skew");
  EXPECT_NEAR(r_fast[3], kCap / 4.0, kTol);
  EXPECT_NEAR(r_fast[4], 3.0 * kCap / 4.0, kTol);
}

// ---- max-min certificate property tests ------------------------------

TEST(MaxMinCertificate, AcceptsKnownOptimum) {
  const std::vector<std::vector<LinkId>> paths{{0}, {0, 1}, {1}};
  const std::vector<std::uint8_t> active{1, 1, 1};
  const std::vector<double> rates{kCap / 2, kCap / 2, kCap / 2};
  EXPECT_TRUE(max_min_certificate_ok(paths, active, rates, kCap, kTol));
}

TEST(MaxMinCertificate, RejectsOverCapacity) {
  const std::vector<std::vector<LinkId>> paths{{0}, {0}};
  const std::vector<std::uint8_t> active{1, 1};
  std::string why;
  EXPECT_FALSE(max_min_certificate_ok(paths, active, {0.6 * kCap, 0.6 * kCap},
                                      kCap, kTol, &why));
  EXPECT_NE(why.find("over capacity"), std::string::npos);
}

TEST(MaxMinCertificate, RejectsNonBottleneckedFlow) {
  // Feasible but not max-min: flow 1 could still grow (its only link is
  // unsaturated), so it crosses no saturated link.
  const std::vector<std::vector<LinkId>> paths{{0}, {1}};
  const std::vector<std::uint8_t> active{1, 1};
  std::string why;
  EXPECT_FALSE(max_min_certificate_ok(paths, active, {kCap, 0.5 * kCap}, kCap,
                                      kTol, &why));
  EXPECT_NE(why.find("no saturated link"), std::string::npos);
}

TEST(MaxMinCertificate, RejectsStarvedEqualPathFlow) {
  // Link saturated, but flow 1 runs below the max crosser: progressive
  // filling would never produce unequal rates on the same bottleneck.
  const std::vector<std::vector<LinkId>> paths{{0}, {0}};
  const std::vector<std::uint8_t> active{1, 1};
  EXPECT_FALSE(max_min_certificate_ok(paths, active,
                                      {0.75 * kCap, 0.25 * kCap}, kCap, kTol));
}

TEST(MaxMinCertificate, RejectsZeroLinkFlowBelowLineRate) {
  const std::vector<std::vector<LinkId>> paths{{}};
  const std::vector<std::uint8_t> active{1};
  std::string why;
  EXPECT_FALSE(
      max_min_certificate_ok(paths, active, {0.5 * kCap}, kCap, kTol, &why));
  EXPECT_NE(why.find("line rate"), std::string::npos);
}

TEST(MaxMinCertificate, IgnoresInactiveFlows) {
  const std::vector<std::vector<LinkId>> paths{{0}, {0}};
  const std::vector<std::uint8_t> active{1, 0};
  EXPECT_TRUE(max_min_certificate_ok(paths, active, {kCap, 0.0}, kCap, kTol));
}

// ---- Machine-level differential --------------------------------------

// Relative timing tolerance: per-phase durations derive from rates that
// agree to 1e-9 relative; collectives chain tens of phases.
void expect_close_time(double a, double b, const std::string& context) {
  ASSERT_NEAR(a, b, 1e-7 * std::max(a, b) + 1e-15) << context;
}

TEST(FairShareDiff, MachineTimingsMatchAcrossSolvers) {
  Xoshiro256 rng(7);
  const HostSwitchGraph g = random_host_switch_graph(64, 16, 8, rng);
  for (const RoutingPolicy pol :
       {RoutingPolicy::kDeterministic, RoutingPolicy::kEcmp}) {
    SimParams p;
    p.routing = pol;
    p.fluid_solver = FluidSolver::kReference;
    Machine ref(g, p);
    p.fluid_solver = FluidSolver::kFast;
    Machine fast(g, p);
    const std::string tag =
        pol == RoutingPolicy::kEcmp ? "ecmp" : "deterministic";

    expect_close_time(ref.alltoall(1 << 14), fast.alltoall(1 << 14),
                      tag + " alltoall");
    expect_close_time(ref.allreduce(1 << 16), fast.allreduce(1 << 16),
                      tag + " allreduce");
    expect_close_time(ref.allgather(1 << 12), fast.allgather(1 << 12),
                      tag + " allgather");
    const auto skewed = [](Rank s, Rank d) {
      return static_cast<std::uint64_t>((s * 131 + d * 17) % 4096 + 64);
    };
    expect_close_time(ref.alltoallv(skewed), fast.alltoallv(skewed),
                      tag + " alltoallv");
    expect_close_time(ref.now(), fast.now(), tag + " clock");
  }
}

TEST(FairShareDiff, MachineMidPhaseFaultTimingsMatchAcrossSolvers) {
  // A cable dies mid-alltoall and is later repaired: in-flight flows
  // reroute (set_paths rebuild on the fast path) and the remaining
  // traffic re-solves. Timings and degradation counters must not depend
  // on which solver drives the fluid loop.
  Xoshiro256 rng(21);
  const HostSwitchGraph g = random_host_switch_graph(32, 8, 6, rng);
  const auto nbrs = g.neighbors(0);
  ASSERT_FALSE(nbrs.empty());
  const SwitchId victim = *nbrs.begin();

  const auto run = [&](FluidSolver solver) {
    SimParams p;
    p.fluid_solver = solver;
    Machine m(g, p);
    m.inject_faults({{5e-5, FaultEvent::Kind::kLinkDown, 0, victim},
                     {4e-4, FaultEvent::Kind::kLinkUp, 0, victim}});
    std::vector<double> times;
    times.push_back(m.alltoall(1 << 16));
    times.push_back(m.allreduce(1 << 15));
    times.push_back(m.now());
    return std::make_pair(times, m.fault_stats());
  };
  const auto [t_ref, s_ref] = run(FluidSolver::kReference);
  const auto [t_fast, s_fast] = run(FluidSolver::kFast);
  for (std::size_t i = 0; i < t_ref.size(); ++i) {
    expect_close_time(t_ref[i], t_fast[i], "fault step " + std::to_string(i));
  }
  EXPECT_EQ(s_ref.events_applied, s_fast.events_applied);
  EXPECT_EQ(s_ref.flows_retried, s_fast.flows_retried);
  EXPECT_EQ(s_ref.flows_failed, s_fast.flows_failed);
  EXPECT_GT(s_ref.events_applied, 0u);
}

}  // namespace
}  // namespace orp

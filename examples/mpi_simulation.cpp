// mpi_simulation — run NAS communication skeletons on any topology.
//
//   $ ./mpi_simulation --topology proposed --hosts 256 --radix 12
//   $ ./mpi_simulation --topology fattree --hosts 1024
//   $ ./mpi_simulation --load mygraph.hsg --kernels MG,CG
//
// Demonstrates the simulator API: build or load a host-switch graph, wrap
// it in a Machine (flow-level fluid network + MPI collectives), and run
// the NAS kernels, reporting simulated time, Mop/s, and the communication
// share of the runtime.

#include <iostream>
#include <sstream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hsg/io.hpp"
#include "search/solver.hpp"
#include "sim/nas.hpp"
#include "topo/attach.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace {

using namespace orp;

HostSwitchGraph build_topology(const std::string& name, std::uint32_t n,
                               std::uint32_t r, std::uint64_t iters,
                               std::uint64_t seed) {
  if (name == "proposed") {
    SolveOptions options;
    options.iterations = iters;
    options.seed = seed;
    return solve_orp(n, r, options).graph;
  }
  if (name == "torus") {
    for (std::uint32_t base = 2;; ++base) {
      const TorusParams params{3, base, r};
      if (r > torus_link_degree(params) && torus_host_capacity(params) >= n) {
        return build_torus(params, n);
      }
    }
  }
  if (name == "dragonfly") {
    for (std::uint32_t a = 2;; a += 2) {
      const DragonflyParams params{a};
      if (dragonfly_host_capacity(params) >= n) return build_dragonfly(params, n);
    }
  }
  if (name == "fattree") {
    for (std::uint32_t k = 2;; k += 2) {
      const FatTreeParams params{k};
      if (fattree_host_capacity(params) >= n) return build_fattree(params, n);
    }
  }
  throw std::invalid_argument("unknown topology '" + name +
                              "' (use proposed|torus|dragonfly|fattree)");
}

std::vector<NasKernel> parse_kernels(const std::string& spec) {
  if (spec == "all") return all_nas_kernels();
  std::vector<NasKernel> kernels;
  std::istringstream stream(spec);
  std::string token;
  while (std::getline(stream, token, ',')) {
    bool found = false;
    for (const NasKernel kernel : all_nas_kernels()) {
      if (token == nas_kernel_name(kernel)) {
        kernels.push_back(kernel);
        found = true;
      }
    }
    if (!found) throw std::invalid_argument("unknown NAS kernel '" + token + "'");
  }
  return kernels;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("mpi_simulation", "simulate NAS kernels on a host-switch graph");
  cli.option("topology", "proposed", "proposed|torus|dragonfly|fattree (ignored with --load)");
  cli.option("load", "", "load a host-switch graph from this .hsg file instead");
  cli.option("hosts", "256", "number of hosts (square power of two for grid kernels)");
  cli.option("radix", "12", "switch radix (proposed/torus)");
  cli.option("kernels", "all", "comma list, e.g. MG,CG,FT (default: all eight)");
  cli.option("fraction", "0.1", "fraction of the class iteration counts to simulate");
  cli.option("iters", "2000", "SA iterations when building the proposed topology");
  cli.option("seed", "1", "random seed");
  cli.flag("dfs-ranks", "map MPI ranks in depth-first host order (paper's mapping)");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  HostSwitchGraph graph =
      !cli.get("load").empty()
          ? read_hsg_file(cli.get("load"))
          : build_topology(cli.get("topology"), n,
                           static_cast<std::uint32_t>(cli.get_int("radix")),
                           static_cast<std::uint64_t>(cli.get_int("iters")),
                           static_cast<std::uint64_t>(cli.get_int("seed")));
  graph.check_invariants();

  std::vector<HostId> rank_map;
  if (cli.has("dfs-ranks")) rank_map = dfs_host_order(graph);
  Machine machine(graph, SimParams{}, std::move(rank_map));

  NasOptions options;
  options.iteration_fraction = cli.get_double("fraction");

  std::cout << "topology: " << (cli.get("load").empty() ? cli.get("topology") : cli.get("load"))
            << "  hosts=" << graph.num_hosts() << "  switches=" << graph.num_switches()
            << "  radix=" << graph.radix() << "\n";
  Table table({"kernel", "sim time s", "Mop/s", "comm %"});
  for (const NasKernel kernel : parse_kernels(cli.get("kernels"))) {
    const NasResult result = run_nas_kernel(machine, kernel, options);
    table.row()
        .add(result.name)
        .add(result.seconds, 5)
        .add(result.mops_per_second, 1)
        .add(100.0 * result.comm_seconds / result.seconds, 1);
  }
  table.print(std::cout);
  return 0;
}

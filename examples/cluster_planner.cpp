// cluster_planner — procurement-style what-if analysis.
//
//   $ ./cluster_planner --hosts 1024 --budget 4000000
//
// Sweeps switch radixes for the proposed topology and reports, for each
// candidate fabric, the hardware bill (switches, cables by type, dollars,
// watts) and quality metrics, flagging the cheapest design that meets a
// latency (h-ASPL) target and an optional budget. Exercises the bounds,
// search, cost, and floorplan APIs together.

#include <iostream>
#include <optional>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "cost/evaluate.hpp"
#include "hsg/bounds.hpp"
#include "hsg/metrics.hpp"
#include "search/solver.hpp"

int main(int argc, char** argv) {
  using namespace orp;

  CliParser cli("cluster_planner", "explore radix/cost trade-offs for a fixed host count");
  cli.option("hosts", "1024", "number of hosts");
  cli.option("radix-min", "12", "smallest switch radix to consider");
  cli.option("radix-max", "36", "largest switch radix to consider");
  cli.option("radix-step", "4", "radix sweep step");
  cli.option("iters", "1500", "SA iterations per design point");
  cli.option("haspl-target", "0", "require h-ASPL <= target (0 = no requirement)");
  cli.option("budget", "0", "require total cost <= budget USD (0 = no limit)");
  cli.option("seed", "1", "random seed");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto r_min = static_cast<std::uint32_t>(cli.get_int("radix-min"));
  const auto r_max = static_cast<std::uint32_t>(cli.get_int("radix-max"));
  const auto r_step = static_cast<std::uint32_t>(cli.get_int("radix-step"));
  const double haspl_target = cli.get_double("haspl-target");
  const double budget = cli.get_double("budget");

  std::cout << "Candidate fabrics for n=" << n << " hosts (proposed topology per radix)\n";
  Table table({"radix", "m_opt", "h-ASPL", "bound", "cables e/o", "power W",
               "cost $", "fits"});

  std::optional<std::pair<double, std::uint32_t>> best;  // (cost, radix)
  for (std::uint32_t r = r_min; r <= r_max; r += r_step) {
    SolveOptions options;
    options.iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed")) + r;
    const SolveResult design = solve_orp(n, r, options);
    const auto bill = evaluate_network_cost(design.graph);

    const bool meets_latency =
        haspl_target <= 0.0 || design.metrics.h_aspl <= haspl_target;
    const bool meets_budget = budget <= 0.0 || bill.total_cost_usd() <= budget;
    const bool fits = meets_latency && meets_budget;
    if (fits && (!best || bill.total_cost_usd() < best->first)) {
      best = {bill.total_cost_usd(), r};
    }

    table.row()
        .add(static_cast<std::size_t>(r))
        .add(static_cast<std::size_t>(design.switch_count))
        .add(design.metrics.h_aspl, 3)
        .add(haspl_lower_bound(n, r), 3)
        .add(std::to_string(bill.electrical_cables) + "/" +
             std::to_string(bill.optical_cables))
        .add(bill.total_power_w(), 0)
        .add(bill.total_cost_usd(), 0)
        .add(fits ? "yes" : "no");
  }
  table.print(std::cout);

  if (best) {
    std::cout << "\ncheapest design meeting all requirements: radix " << best->second
              << " at $" << format_double(best->first, 0) << "\n";
  } else {
    std::cout << "\nno design meets the requirements; relax the h-ASPL target or budget\n";
  }
  return 0;
}

// design_network — design an interconnect for a cluster and compare it
// against the conventional alternatives at the same scale.
//
//   $ ./design_network --hosts 1024 --radix 16
//
// This is the §6 workflow as a tool: build the proposed topology (m_opt +
// SA with 2-neighbor swing) and the smallest torus / dragonfly / fat-tree
// that can carry the same hosts, then report graph quality (h-ASPL,
// diameter), bisection cut, switch counts, power, and cost side by side.

#include <iostream>
#include <optional>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "cost/evaluate.hpp"
#include "obs/sink.hpp"
#include "hsg/bounds.hpp"
#include "hsg/io.hpp"
#include "hsg/metrics.hpp"
#include "partition/partition.hpp"
#include "search/solver.hpp"
#include "topo/dragonfly.hpp"
#include "topo/fattree.hpp"
#include "topo/torus.hpp"

namespace {

using namespace orp;

struct Candidate {
  std::string name;
  HostSwitchGraph graph;
};

void add_row(Table& table, const Candidate& candidate, std::uint64_t seed) {
  const auto metrics = compute_host_metrics(candidate.graph);
  const auto cost = evaluate_network_cost(candidate.graph);
  const auto cut = host_switch_cut(candidate.graph, 2, seed);
  table.row()
      .add(candidate.name)
      .add(static_cast<std::size_t>(candidate.graph.num_switches()))
      .add(metrics.h_aspl, 3)
      .add(static_cast<std::size_t>(metrics.diameter))
      .add(cut)
      .add(cost.total_power_w(), 0)
      .add(cost.total_cost_usd(), 0);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("design_network",
                "design a low h-ASPL interconnect and compare with torus/dragonfly/fat-tree");
  cli.option("hosts", "1024", "number of hosts to connect");
  cli.option("radix", "16", "switch radix for the proposed topology");
  cli.option("iters", "3000", "simulated-annealing iterations");
  cli.option("seed", "1", "random seed");
  cli.option("out", "", "write the proposed topology to this .hsg file");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  obs::apply_cli(cli);

  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto r = static_cast<std::uint32_t>(cli.get_int("radix"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  SolveOptions options;
  options.iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  options.seed = seed;
  std::cout << "Designing the proposed topology for n=" << n << ", r=" << r
            << " (m_opt=" << optimal_switch_count(n, r) << ") ...\n";
  const SolveResult proposed = solve_orp(n, r, options);

  std::vector<Candidate> candidates;
  candidates.push_back({"proposed (ORP)", proposed.graph});

  // Smallest conventional fabrics that can carry n hosts. The torus keeps
  // the requested radix; dragonfly and fat-tree dictate their own.
  for (std::uint32_t base = 2;; ++base) {
    const TorusParams params{3, base, r};
    if (r > torus_link_degree(params) && torus_host_capacity(params) >= n) {
      candidates.push_back(
          {"3-D torus (N=" + std::to_string(base) + ", r=" + std::to_string(r) + ")",
           build_torus(params, n)});
      break;
    }
  }
  for (std::uint32_t a = 2;; a += 2) {
    const DragonflyParams params{a};
    if (dragonfly_host_capacity(params) >= n) {
      candidates.push_back(
          {"dragonfly (a=" + std::to_string(a) + ", r=" + std::to_string(params.radix()) + ")",
           build_dragonfly(params, n)});
      break;
    }
  }
  for (std::uint32_t k = 2;; k += 2) {
    const FatTreeParams params{k};
    if (fattree_host_capacity(params) >= n) {
      candidates.push_back(
          {std::to_string(k) + "-ary fat-tree (r=" + std::to_string(k) + ")",
           build_fattree(params, n)});
      break;
    }
  }

  Table table({"topology", "switches", "h-ASPL", "diameter", "bisection cut",
               "power W", "cost $"});
  for (const auto& candidate : candidates) add_row(table, candidate, seed);
  table.print(std::cout);
  std::cout << "\nh-ASPL lower bound (Theorem 2) at r=" << r << ": "
            << format_double(haspl_lower_bound(n, r), 3) << "\n";

  if (const std::string path = cli.get("out"); !path.empty()) {
    if (!write_hsg_file(path, proposed.graph)) {
      std::cerr << "could not write " << path << "\n";
      return 1;
    }
    std::cout << "wrote " << path << "\n";
  }
  if (obs::cli_wants_summary(cli)) obs::print_summary(std::cout);
  obs::flush();
  return 0;
}

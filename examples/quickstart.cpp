// Quickstart — solve a small Order/Radix Problem end to end.
//
//   $ ./quickstart --hosts 64 --radix 8
//
// Builds the proposed topology for (n, r): predicts the optimal switch
// count from the continuous Moore bound, runs simulated annealing with the
// 2-neighbor swing operation, and reports the result against the paper's
// lower bounds. Optionally writes the graph (.hsg) and a Graphviz DOT file.

#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "hsg/bounds.hpp"
#include "hsg/io.hpp"
#include "obs/sink.hpp"
#include "search/solver.hpp"

int main(int argc, char** argv) {
  using namespace orp;

  CliParser cli("quickstart", "solve ORP(n, r) and print the solution quality");
  cli.option("hosts", "64", "order n: number of hosts");
  cli.option("radix", "8", "radix r: ports per switch");
  cli.option("iters", "4000", "simulated-annealing iterations");
  cli.option("seed", "1", "random seed");
  cli.option("out", "", "write the solution graph to this .hsg file");
  cli.option("dot", "", "write a Graphviz rendering to this .dot file");
  obs::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  obs::apply_cli(cli);

  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto r = static_cast<std::uint32_t>(cli.get_int("radix"));

  SolveOptions options;
  options.iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::cout << "Solving ORP(n=" << n << ", r=" << r << ") ...\n";
  const SolveResult result = solve_orp(n, r, options);

  Table table({"quantity", "value"});
  table.row().add("switches m").add(static_cast<std::size_t>(result.switch_count));
  table.row().add("predicted m_opt").add(static_cast<std::size_t>(result.predicted_m_opt));
  table.row().add("method").add(result.used_clique ? "clique construction (provably optimal)"
                                                   : "SA with 2-neighbor swing");
  table.row().add("h-ASPL").add(result.metrics.h_aspl);
  table.row().add("h-ASPL lower bound (Thm 2)").add(result.haspl_lower_bound);
  table.row().add("continuous Moore bound").add(result.continuous_moore_bound);
  table.row().add("diameter").add(static_cast<std::size_t>(result.metrics.diameter));
  table.row().add("diameter lower bound (Thm 1)")
      .add(static_cast<std::size_t>(diameter_lower_bound(n, r)));
  table.row().add("switch-switch links").add(result.graph.num_switch_edges());
  table.print(std::cout);

  const double gap =
      100.0 * (result.metrics.h_aspl / result.haspl_lower_bound - 1.0);
  std::cout << "gap to the Theorem-2 lower bound: " << format_double(gap, 2)
            << "%\n";

  if (const std::string path = cli.get("out"); !path.empty()) {
    if (write_hsg_file(path, result.graph)) {
      std::cout << "wrote " << path << "\n";
    } else {
      std::cerr << "could not write " << path << "\n";
      return 1;
    }
  }
  if (const std::string path = cli.get("dot"); !path.empty()) {
    std::ofstream file(path);
    if (file) {
      write_dot(file, result.graph);
      std::cout << "wrote " << path << "\n";
    } else {
      std::cerr << "could not write " << path << "\n";
      return 1;
    }
  }
  if (obs::cli_wants_summary(cli)) obs::print_summary(std::cout);
  obs::flush();
  return 0;
}

// traffic_study — synthetic traffic and routing-policy exploration.
//
//   $ ./traffic_study --hosts 256 --radix 12 --bytes 1000000
//
// Builds the proposed topology and reports, per traffic pattern, the
// delivered aggregate bandwidth, mean route length, and hottest-link
// utilization under deterministic and ECMP routing — the view a network
// architect wants before committing to a wiring plan. Also cross-checks
// the fluid numbers against the packet-level engine.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "search/solver.hpp"
#include "sim/packet.hpp"
#include "sim/traffic.hpp"

int main(int argc, char** argv) {
  using namespace orp;

  CliParser cli("traffic_study", "synthetic traffic on a designed topology");
  cli.option("hosts", "256", "number of hosts (square power of two)");
  cli.option("radix", "12", "switch radix");
  cli.option("bytes", "1000000", "message size per rank");
  cli.option("iters", "2000", "SA iterations");
  cli.option("seed", "1", "random seed");
  cli.flag("packet-check", "also run the packet-level engine for each pattern");
  if (!cli.parse(argc, argv)) return 0;

  const auto n = static_cast<std::uint32_t>(cli.get_int("hosts"));
  const auto r = static_cast<std::uint32_t>(cli.get_int("radix"));
  const auto bytes = static_cast<std::uint64_t>(cli.get_int("bytes"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  SolveOptions options;
  options.iterations = static_cast<std::uint64_t>(cli.get_int("iters"));
  options.seed = seed;
  std::cout << "Designing proposed topology for n=" << n << ", r=" << r << " ...\n";
  const SolveResult design = solve_orp(n, r, options);
  std::cout << "m=" << design.switch_count << "  h-ASPL="
            << format_double(design.metrics.h_aspl, 3) << "  diameter="
            << design.metrics.diameter << "\n\n";

  SimParams det_params;
  SimParams ecmp_params;
  ecmp_params.routing = RoutingPolicy::kEcmp;
  Machine det(design.graph, det_params);
  Machine ecmp(design.graph, ecmp_params);
  PacketSimParams pkt_params;
  PacketMachine packets(design.graph, pkt_params);

  std::vector<std::string> header{"pattern", "det GB/s", "ECMP GB/s",
                                  "mean hops", "max link util"};
  if (cli.has("packet-check")) header.push_back("packet/fluid");
  Table table(header);
  for (const TrafficPattern pattern : all_traffic_patterns()) {
    Xoshiro256 rng_a(seed), rng_b(seed), rng_c(seed);
    const auto det_result = run_traffic(det, pattern, bytes, rng_a);
    const auto ecmp_result = run_traffic(ecmp, pattern, bytes, rng_b);
    table.row()
        .add(det_result.pattern)
        .add(det_result.aggregate_bandwidth / 1e9, 2)
        .add(ecmp_result.aggregate_bandwidth / 1e9, 2)
        .add(det_result.mean_hops, 2)
        .add(det_result.max_link_utilization, 2);
    if (cli.has("packet-check")) {
      const auto messages = make_traffic(pattern, n, bytes, rng_c);
      const auto pkt = packets.phase(messages);
      table.add(pkt.elapsed / det_result.elapsed, 3);
    }
  }
  table.print(std::cout);
  return 0;
}

// bench_diff — the perf-regression gate over two BENCH_*.json reports.
//
//   bench_diff BASELINE.json CURRENT.json [--tolerance 0.25] ...
//
// Compares the per-benchmark median ns/op of CURRENT against BASELINE and
// exits 1 when any series regressed beyond the tolerance *and* the MAD
// noise guard (see DiffOptions in src/obs/bench/report.hpp), 0 otherwise,
// 2 on usage/parse errors. A self-diff always passes; a 2x slowdown on any
// series always fails at the default tolerance.
//
// CI runs this against the committed bench/baseline/BENCH_baseline.json
// with a wide tolerance (the baseline was recorded on different hardware);
// use the default tolerance for same-machine before/after comparisons.

#include <exception>
#include <fstream>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "obs/bench/report.hpp"

int main(int argc, char** argv) {
  using namespace orp;
  using namespace orp::obs::bench;

  CliParser cli("bench_diff", "compare two BENCH_*.json microbenchmark reports");
  cli.option("tolerance", "0.25",
             "relative slowdown allowed before a series counts as regressed");
  cli.option("mad-sigma", "4",
             "noise guard: slowdown must also exceed this many MADs");
  cli.option("abs-floor-ns", "10",
             "ignore absolute deltas below this many ns/op");
  cli.option("markdown", "",
             "also write the comparison as a markdown table to this path "
             "(CI appends it to the job summary)");
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (cli.positional().size() != 2) {
    std::cerr << "usage: bench_diff BASELINE.json CURRENT.json [options]\n";
    cli.print_usage();
    return 2;
  }

  BenchReport baseline, current;
  try {
    baseline = report_from_file(cli.positional()[0]);
    current = report_from_file(cli.positional()[1]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  DiffOptions options;
  options.tolerance = cli.get_double("tolerance");
  options.mad_sigma = cli.get_double("mad-sigma");
  options.abs_floor_ns = cli.get_double("abs-floor-ns");

  const DiffResult diff = diff_reports(baseline, current, options);

  std::cout << "baseline: " << cli.positional()[0] << " (git "
            << baseline.provenance.git_sha << ", " << baseline.provenance.compiler
            << ", cpu: " << baseline.provenance.cpu_model << ")\n";
  std::cout << "current:  " << cli.positional()[1] << " (git "
            << current.provenance.git_sha << ", " << current.provenance.compiler
            << ", cpu: " << current.provenance.cpu_model << ")\n";
  if (diff.mode_mismatch) {
    std::cerr << "warning: comparing a quick report against a full report; "
                 "overlapping series only\n";
  }
  if (diff.counters_mismatch) {
    std::cerr << "warning: counter sources differ (baseline: "
              << baseline.counters_source << ", current: "
              << current.counters_source
              << "); skipping hardware-counter columns\n";
  }
  bool any_hw = false;
  for (const DiffRow& row : diff.rows) any_hw = any_hw || row.hw_valid;
  const bool include_hw = any_hw && !diff.counters_mismatch;
  diff_table(diff, include_hw).print(std::cout);
  for (const std::string& name : diff.only_baseline) {
    std::cerr << "warning: series \"" << name
              << "\" is in the baseline but missing from the current report\n";
  }
  for (const std::string& name : diff.only_current) {
    std::cout << "note: new series \"" << name << "\" has no baseline yet\n";
  }

  if (diff.rows.empty()) {
    std::cerr << "error: the reports share no benchmark series\n";
    return 2;
  }

  if (const std::string md_path = cli.get("markdown"); !md_path.empty()) {
    std::ofstream md(md_path);
    if (!md) {
      std::cerr << "error: cannot write " << md_path << "\n";
      return 2;
    }
    std::size_t regressed = 0;
    for (const DiffRow& row : diff.rows) regressed += row.regressed ? 1u : 0u;
    md << "## Benchmark comparison\n\n";
    md << "- baseline: `" << cli.positional()[0] << "` (git "
       << baseline.provenance.git_sha << ", " << baseline.provenance.compiler
       << ")\n";
    md << "- current: `" << cli.positional()[1] << "` (git "
       << current.provenance.git_sha << ", " << current.provenance.compiler
       << ")\n";
    md << "- verdict: "
       << (diff.any_regression
               ? "**FAIL** — " + std::to_string(regressed) + "/" +
                     std::to_string(diff.rows.size()) + " series regressed"
               : "OK — no series regressed")
       << " beyond tolerance " << format_double(options.tolerance, 2)
       << "\n\n";
    diff_table(diff, include_hw).print_markdown(md);
  }

  if (diff.any_regression) {
    std::size_t regressed = 0;
    for (const DiffRow& row : diff.rows) regressed += row.regressed ? 1u : 0u;
    std::cout << "FAIL: " << regressed << "/" << diff.rows.size()
              << " series regressed beyond tolerance "
              << format_double(options.tolerance, 2) << "\n";
    return 1;
  }
  std::cout << "OK: no series regressed beyond tolerance "
            << format_double(options.tolerance, 2) << "\n";
  return 0;
}

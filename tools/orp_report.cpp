// orp_report: offline analyzer for the JSONL traces written by --obs-out.
//
// Reads one trace (and optionally the run ledger), prints a markdown or
// CSV report: span self-time profile, counter rates from the snapshot
// sampler stream, flow-event accounting, annealer convergence
// diagnostics (windowed acceptance rate vs temperature, stall verdict),
// and the simulator's network telemetry (per-flow latency attribution,
// link heatmap, per-phase bottleneck links — see docs/telemetry.md).
//
// Exit codes: 0 ok, 1 diagnostic failure (malformed trace lines unless
// --allow-malformed, or a trace with zero events), 2 usage error. CI runs
// this after a short traced annealer run and fails the job on non-zero.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/trace_analysis.hpp"

namespace {

int run(int argc, const char* const* argv) {
  using namespace orp::obs::report;

  orp::CliParser cli(
      "orp_report",
      "Analyze an --obs-out JSONL trace: span profile, counter rates, "
      "annealer convergence. Pass the trace path as the positional arg.");
  cli.option("ledger", "", "run-ledger JSONL to append to the report");
  cli.option("format", "md", "output format: md or csv");
  cli.option("out", "", "write the report here instead of stdout");
  cli.option("top", "20", "spans listed per category in the profile");
  cli.option("windows", "8", "convergence windows");
  cli.option("net-top", "12", "rows per table in the network section");
  cli.flag("allow-malformed", "do not fail on unparseable trace lines");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.positional().size() != 1) {
    std::cerr << "orp_report: expected exactly one trace path\n";
    cli.print_usage();
    return 2;
  }
  const std::string format = cli.get("format");
  if (format != "md" && format != "csv") {
    std::cerr << "orp_report: --format must be md or csv, got '" << format
              << "'\n";
    return 2;
  }

  ReportOptions options;
  options.top_k = static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("top")));
  options.windows =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("windows")));
  options.net_top =
      static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("net-top")));

  const TraceAnalysis analysis = analyze_trace_file(cli.positional()[0], options);

  std::vector<LedgerEntry> ledger;
  if (cli.has("ledger") && !cli.get("ledger").empty()) {
    ledger = read_ledger_file(cli.get("ledger"));
  }

  const std::string report = format == "csv"
                                 ? render_csv(analysis, options)
                                 : render_markdown(analysis, ledger, options);
  if (cli.has("out") && !cli.get("out").empty()) {
    std::ofstream out(cli.get("out"));
    if (!out) {
      std::cerr << "orp_report: cannot write " << cli.get("out") << "\n";
      return 2;
    }
    out << report;
  } else {
    std::cout << report;
  }

  // Diagnostics: a profiling pipeline that silently swallows a corrupt or
  // empty trace is worse than none, so these are hard failures for CI.
  int rc = 0;
  if (analysis.malformed_lines > 0 && !cli.has("allow-malformed")) {
    std::cerr << "orp_report: " << analysis.malformed_lines
              << " malformed trace line(s) (pass --allow-malformed to ignore)\n";
    rc = 1;
  }
  if (analysis.event_lines == 0) {
    std::cerr << "orp_report: trace contains no events\n";
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
